// The serverful baseline SF (Fig. 2(a)), following Google's FL stack and
// Meta's PAPAYA: a static, always-on hierarchy of aggregator processes on a
// fixed pool of provisioned nodes, direct gRPC channels between levels, and
// an in-memory queue inside each aggregator (the SF-mono queuing model of
// Fig. 5). Resources are charged by *allocation*: the reserved cores accrue
// cost around the clock whether or not updates are flowing — the
// inefficiency LIFL's elasticity removes (Fig. 9(b,d), Fig. 10).

package systems

import (
	"fmt"
	"sort"

	"repro/internal/aggcore"
	"repro/internal/fedavg"
	"repro/internal/netstack"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/trace"

	"repro/internal/cluster"
)

// SF is the serverful system.
type SF struct {
	cfg     Config
	Eng     *sim.Engine
	RNG     *sim.RNG
	Cluster *cluster.Cluster

	global *tensor.Tensor
	algo   fedavg.Algorithm

	// Static hierarchy, created once and kept warm forever.
	leaves  []*sfAgg
	middles map[int]*aggcore.Aggregator // per non-top node
	top     *aggcore.Aggregator

	// selector is the stateful gateway of Fig. 2(a): it mediates all
	// client↔aggregator communication (queuing, load balancing), so every
	// download and upload pays a pass through its process pool.
	selector *sim.Station

	rs *sfRound
}

// mediate charges one selector pass for a payload of the given size.
func (s *SF) mediate(size uint64, done func()) {
	lat, cpu := s.cfg.Params.KernelTraversal(size)
	s.Cluster.Nodes[s.cfg.TopNode].ExecFree("selector", cpu)
	s.selector.Submit(lat, func(_, _ sim.Duration) { done() })
}

type sfAgg struct {
	agg  *aggcore.Aggregator
	node int
}

type sfRound struct {
	round    int
	done     func(RoundResult)
	start    sim.Duration
	first    sim.Duration
	hasFirst bool
	injected bool
	cpu0     sim.Duration
	updates  int
	active   int
	nodes    int
	aggDone  sim.Duration
	finished bool
}

// NewSF assembles the static serverful hierarchy: SFLeaves leaf aggregators
// spread round-robin over the non-top nodes, one middle per leaf node, and
// the top on its dedicated node; every node's allocation is reserved
// immediately ("we always maximize the resource allocation to the
// aggregators and keep them warm throughout", §6.2).
func NewSF(eng *sim.Engine, cfg Config) *SF {
	cfg = cfg.withDefaults()
	rng := sim.NewRNG(cfg.Seed)
	cl := cluster.New(eng, rng, cfg.Params, cfg.Nodes)
	s := &SF{
		cfg:     cfg,
		Eng:     eng,
		RNG:     rng,
		Cluster: cl,
		global:  newGlobal(cfg.Model),
		algo:    fedavg.FedAvg{Workers: cfg.Workers},
		middles: make(map[int]*aggcore.Aggregator),
	}
	phys, virt := cfg.Model.PhysLen(), cfg.Model.Params
	aggNodes := s.aggNodes()
	for i := 0; i < cfg.SFLeaves; i++ {
		node := aggNodes[i%len(aggNodes)]
		// Serverful aggregation is batch-style: updates queue in the
		// monolith's in-memory queue and aggregate once the round's goal is
		// collected (lazy, Fig. 1(b)); eager timing is LIFL's §5.4 feature.
		a := aggcore.New(fmt.Sprintf("sf-leaf%d", i), aggcore.RoleLeaf, cl.Nodes[node], s.algo, phys, virt)
		a.Mode = aggcore.Lazy
		a.Transport = (*sfTransport)(s)
		a.Tracer = cfg.Tracer
		a.TraceName = fmt.Sprintf("LF%d", i+1)
		s.leaves = append(s.leaves, &sfAgg{agg: a, node: node})
	}
	for _, node := range aggNodes {
		m := aggcore.New(fmt.Sprintf("sf-middle-n%d", node), aggcore.RoleMiddle, cl.Nodes[node], s.algo, phys, virt)
		m.Mode = aggcore.Lazy
		m.Transport = (*sfTransport)(s)
		m.Tracer = cfg.Tracer
		m.TraceName = fmt.Sprintf("MID%d", node)
		s.middles[node] = m
	}
	s.top = aggcore.New("sf-top", aggcore.RoleTop, cl.Nodes[cfg.TopNode], s.algo, phys, virt)
	s.top.Mode = aggcore.Lazy
	s.top.Tracer = cfg.Tracer
	s.top.TraceName = "Top"
	s.top.OnComplete = s.onGlobal
	// Always-on allocation sized to the static fleet ("we always maximize
	// the resource allocation to the aggregators"): CPU shares proportional
	// to the aggregators hosted, with a floor per node.
	totalAggs := float64(len(s.leaves) + len(s.middles) + 1)
	coresPerNode := 0.09 * totalAggs / float64(cfg.Nodes)
	if coresPerNode < 0.6 {
		coresPerNode = 0.6
	}
	if cfg.SFReservedCoresPerNode > 1 {
		coresPerNode = float64(cfg.SFReservedCoresPerNode)
	}
	for _, n := range cl.Nodes {
		n.Reserve("sf-aggregators", coresPerNode)
		n.AllocMem(uint64(coresPerNode * float64(cfg.Params.AggregatorMemBytes)))
	}
	s.selector = sim.NewStation(eng, "sf-selector", 1)
	return s
}

// aggNodes lists the nodes hosting leaves/middles (all but the top's).
func (s *SF) aggNodes() []int {
	var out []int
	for i := range s.Cluster.Nodes {
		if i != s.cfg.TopNode {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		out = []int{s.cfg.TopNode}
	}
	return out
}

// Name implements Service.
func (s *SF) Name() string { return "SF" }

// Global implements Service.
func (s *SF) Global() *tensor.Tensor { return s.global }

// SetGlobal implements Service (the cross-cell fabric's between-round
// model install).
func (s *SF) SetGlobal(t *tensor.Tensor) { s.global = t }

// CPUTime implements Service: allocation-based accounting — the always-on
// reservation is the cost, independent of utilization.
func (s *SF) CPUTime() sim.Duration { return s.Cluster.TotalReservedCPUTime() }

// ActiveAggregators implements Service: the static pool is always active.
func (s *SF) ActiveAggregators() int { return len(s.leaves) + len(s.middles) + 1 }

// RetireRound implements Service: a no-op. The serverful hierarchy is
// static — channels, queues and aggregator processes are round-agnostic,
// so there are no per-round control-plane records to evict (which is why
// SF's live heap was flat over long runs before eviction existed).
func (s *SF) RetireRound(int) {}

// Finalize implements Service.
func (s *SF) Finalize() {}

// RunRound implements Service. Jobs are assigned to leaves by static
// round-robin — the locality-agnostic mapping of a fixed serverful fleet.
func (s *SF) RunRound(round int, jobs []ClientJob, done func(RoundResult)) {
	if s.rs != nil && !s.rs.finished {
		panic("sf: overlapping rounds")
	}
	rs := &sfRound{round: round, done: done, start: s.Eng.Now(), cpu0: s.CPUTime(), injected: true}
	for _, j := range jobs {
		if !j.SkipBroadcast {
			rs.injected = false
			break
		}
	}
	s.rs = rs

	// Static round-robin job→leaf mapping.
	perLeaf := make([][]int, len(s.leaves))
	for i := range jobs {
		li := i % len(s.leaves)
		perLeaf[li] = append(perLeaf[li], i)
	}
	// Reset goals along the hierarchy for this round.
	activeLeaves := make(map[int]int) // node → active leaf count
	for li, leaf := range s.leaves {
		if len(perLeaf[li]) == 0 {
			continue
		}
		leaf.agg.Assign(aggcore.RoleLeaf, len(perLeaf[li]), s.middles[leaf.node].ID, round)
		activeLeaves[leaf.node]++
		rs.active++
	}
	nodesActive := make([]int, 0, len(activeLeaves))
	for node, cnt := range activeLeaves {
		s.middles[node].Assign(aggcore.RoleMiddle, cnt, s.top.ID, round)
		nodesActive = append(nodesActive, node)
		rs.active++
	}
	sort.Ints(nodesActive)
	if len(nodesActive) == 0 {
		panic("sf: round with no active leaves")
	}
	s.top.Assign(aggcore.RoleTop, len(nodesActive), "", round)
	rs.active++
	rs.nodes = len(nodesActive) + 1

	// Broadcast and uploads, both mediated by the selector (Fig. 2(a)).
	topEgress := s.Cluster.Nodes[s.cfg.TopNode].Egress
	size := s.cfg.Model.Bytes()
	for li, idxs := range perLeaf {
		leaf := s.leaves[li]
		for _, i := range idxs {
			j := jobs[i]
			arrive := func() {
				s.mediate(size, func() {
					s.ingest(rs, leaf, j, j.MakeUpdate(s.global))
				})
			}
			if j.SkipBroadcast {
				s.Eng.After(j.Delay, arrive)
				continue
			}
			s.mediate(size, func() {
				topEgress.Transfer(size, func(_, _ sim.Duration) {
					s.Eng.After(j.Delay, arrive)
				})
			})
		}
	}
}

// ingest receives one client upload at the leaf's node: NIC ingress +
// kernel RX, deserialize, then the in-memory enqueue copy of the monolithic
// queue (Fig. 5, SF-mono) before the leaf consumes it.
func (s *SF) ingest(rs *sfRound, leaf *sfAgg, j ClientJob, upd *tensor.Tensor) {
	n := s.Cluster.Nodes[leaf.node]
	size := upd.VirtualBytes()
	tr := netstack.Transfer{Size: size, NTensors: len(s.cfg.Model.Layers), Component: "sf-ingest"}
	netstack.IngressFromExternal(n, tr, func() {
		desLat, desCPU := n.P.Deserialize(size, tr.NTensors)
		qLat, qCPU := n.P.ShmWrite(size) // in-memory queue enqueue copy
		leaf.agg.ExecAs("sf-ingest", desLat+qLat, desCPU+qCPU, func(start, end sim.Duration) {
			s.cfg.Tracer.Add(leaf.agg.TraceName, trace.KindNetwork, start, end, rs.round)
			if !rs.hasFirst {
				rs.hasFirst = true
				rs.first = s.Eng.Now()
			}
			rs.updates++
			leaf.agg.Receive(aggcore.Update{
				Tensor: upd, Weight: j.Weight, Size: size, Round: rs.round, Producer: j.ID,
			})
		})
	})
}

// sfTransport is direct gRPC between aggregators: loopback within a node,
// NIC across nodes. No brokers, no sidecars — but every hop pays full
// kernel networking and (de)serialization.
type sfTransport SF

// SendResult implements aggcore.Transport.
func (t *sfTransport) SendResult(src *aggcore.Aggregator, out aggcore.Update, dstID string) {
	s := (*SF)(t)
	dst, dstNode := s.find(dstID)
	if dst == nil {
		panic("sf transport: unknown destination " + dstID)
	}
	srcNode := s.nodeIndexOf(src.Node)
	p := src.Node.P
	nT := len(s.cfg.Model.Layers)
	startT := s.Eng.Now()
	serLat, serCPU := p.Serialize(out.Size, nT)
	txLat, txCPU := p.KernelTraversal(out.Size)
	rxLat, rxCPU := p.KernelTraversal(out.Size)
	desLat, desCPU := p.Deserialize(out.Size, nT)
	dn := s.Cluster.Nodes[dstNode]
	recvHalf := func() {
		dn.KernelExec("sf-transport", rxLat, rxCPU, func(_, _ sim.Duration) {
			dst.ExecAs("sf-transport", desLat, desCPU, func(_, _ sim.Duration) {
				s.cfg.Tracer.Add(dst.TraceName, trace.KindNetwork, startT, s.Eng.Now(), out.Round)
				dst.Receive(out)
			})
		})
	}
	src.ExecAs("sf-transport", serLat, serCPU, func(_, _ sim.Duration) {
		src.Node.KernelExec("sf-transport", txLat, txCPU, func(_, _ sim.Duration) {
			if srcNode == dstNode {
				recvHalf()
				return
			}
			src.Node.Egress.Transfer(out.Size, func(_, _ sim.Duration) {
				dn.Ingress.Transfer(out.Size, func(_, _ sim.Duration) {
					recvHalf()
				})
			})
		})
	})
}

// find resolves an aggregator ID to its instance and node.
func (s *SF) find(id string) (*aggcore.Aggregator, int) {
	if id == s.top.ID {
		return s.top, s.cfg.TopNode
	}
	for node, m := range s.middles {
		if m.ID == id {
			return m, node
		}
	}
	for _, l := range s.leaves {
		if l.agg.ID == id {
			return l.agg, l.node
		}
	}
	return nil, -1
}

func (s *SF) nodeIndexOf(n *cluster.Node) int {
	for i, c := range s.Cluster.Nodes {
		if c == n {
			return i
		}
	}
	panic("sf: foreign node")
}

// onGlobal installs and evaluates the new global model.
func (s *SF) onGlobal(top *aggcore.Aggregator, out aggcore.Update) {
	rs := s.rs
	next, err := s.cfg.ServerOpt.Apply(s.global, out.Tensor)
	if err != nil {
		panic(fmt.Sprintf("sf: global update: %v", err))
	}
	s.global = next
	rs.aggDone = s.Eng.Now()
	eval := top.Node.P.EvalTime(s.cfg.Model.Bytes())
	top.ExecAs("aggregator", eval, eval, func(start, end sim.Duration) {
		s.cfg.Tracer.Add(top.TraceName, trace.KindEval, start, end, rs.round)
		rs.finished = true
		end2 := s.Eng.Now()
		act := rs.aggDone - rs.start
		if !rs.injected && rs.hasFirst {
			act = rs.aggDone - rs.first
		}
		if rs.done != nil {
			rs.done(RoundResult{
				Round:        rs.round,
				Start:        rs.start,
				FirstArrival: rs.first,
				End:          end2,
				ACT:          act,
				Updates:      rs.updates,
				AggsCreated:  0,
				AggsActive:   rs.active,
				NodesUsed:    rs.nodes,
				CPUTime:      s.CPUTime() - rs.cpu0,
			})
		}
	})
}
