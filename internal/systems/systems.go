package systems

import (
	"repro/internal/costmodel"
	"repro/internal/fedavg"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Flags select LIFL's orchestration features for the Fig. 8 ablation:
// ① locality-aware placement, ② hierarchy-aware planning (proactive,
// pre-planned aggregator start-up), ③ opportunistic reuse of warm
// instances across levels, ④ eager aggregation.
type Flags struct {
	LocalityPlacement bool // ① BestFit bin-packing (off = least-connection)
	HierarchyPlan     bool // ② pre-planned warm hierarchy (off = reactive)
	Reuse             bool // ③ role conversion of idle warm instances
	Eager             bool // ④ eager aggregation (off = lazy)
}

// AllFlags enables the full LIFL design.
func AllFlags() Flags {
	return Flags{LocalityPlacement: true, HierarchyPlan: true, Reuse: true, Eager: true}
}

// Config parameterizes a system assembly.
type Config struct {
	// Nodes is the number of worker nodes running the aggregation service
	// (the paper uses 5).
	Nodes int
	// TopNode indexes the node hosting the top aggregator when it is not
	// chosen by reuse (the paper dedicates one node to the top).
	TopNode int
	Model   model.Spec
	Params  costmodel.Params
	Seed    int64
	// MC is the per-node maximum service capacity MC_i (model updates),
	// computed offline per Appendix E; 20 in the Fig. 8 testbed for
	// ResNet-152.
	MC float64
	// Flags are LIFL's ablation switches (ignored by SF and SL).
	Flags Flags
	// SFLeaves sizes the serverful static hierarchy for peak load.
	SFLeaves int
	// SFReservedCoresPerNode is SF's always-on CPU allocation per node.
	SFReservedCoresPerNode int
	// SLTargetConcurrency is the baseline threshold autoscaler's
	// per-replica concurrency target.
	SLTargetConcurrency int
	// SLKeepAlive is the baseline's scale-to-zero idle timeout (Knative's
	// stable window, ~60-90 s). Shorter than a round gap, it makes SL
	// cold-start its fleet nearly every round — the churn of Fig. 10(b).
	SLKeepAlive sim.Duration
	// Async parameterizes the buffered-async system (the fifth assembly;
	// see async.go). The synchronous systems ignore it.
	Async AsyncParams
	// Workers bounds the goroutine pool the aggregation fold may use
	// (fedavg.FedAvg's sharded accumulator; <= 1 = serial). Folds are
	// bit-identical for any value — see tensor/parallel.go.
	Workers int
	// ServerOpt turns each round's aggregate into the next global model
	// (default fedavg.Adopt, i.e. plain FedAvg; fedavg.FedAvgM adds server
	// momentum on the ScaleAdd-fused path). All systems share the same
	// optimizer semantics so cross-system comparisons stay algorithm-equal.
	ServerOpt fedavg.ServerOpt
	// Tracer, when set, records Network/Agg/Eval spans for the timelines.
	Tracer *trace.Recorder
	// Obs, when set, receives control-plane and load telemetry (see
	// internal/obs). A nil registry keeps every instrumented site a no-op;
	// systems never allocate one themselves.
	Obs *obs.Registry
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 5
	}
	if c.Model.Params == 0 {
		c.Model = model.ResNet152
	}
	if c.Params.CoresPerNode == 0 {
		c.Params = costmodel.Default()
	}
	if c.MC == 0 {
		c.MC = 20
	}
	if c.SFLeaves == 0 {
		c.SFLeaves = 8
	}
	// SFReservedCoresPerNode of 0 means "size to the fleet" (see NewSF).
	if c.SLTargetConcurrency == 0 {
		c.SLTargetConcurrency = 2
	}
	if c.SLKeepAlive == 0 {
		c.SLKeepAlive = 45 * sim.Second
	}
	if c.ServerOpt == nil {
		c.ServerOpt = fedavg.Adopt{}
	}
	return c
}

// ClientJob is one selected client's contribution to a round.
type ClientJob struct {
	ID string
	// Delay is hibernation + local training time, counted from the moment
	// the client has the global model.
	Delay sim.Duration
	// Weight is the FedAvg sample count c_k.
	Weight float64
	// MakeUpdate produces the local update from the current global model.
	MakeUpdate func(global *tensor.Tensor) *tensor.Tensor
	// SkipBroadcast injects the update Delay after round start without
	// charging model distribution (used by the Fig. 8 microbenchmark,
	// where a batch of updates "arrives at the aggregation service").
	SkipBroadcast bool
	// PreQueued additionally skips the ingest pipeline: the update starts
	// out already resident in the node's message queue, matching Fig. 8's
	// assumption that the estimated Q equals the actual queue length.
	PreQueued bool
}

// RoundResult reports one completed round.
type RoundResult struct {
	Round int
	// Start is round begin (broadcast start); FirstArrival is when the
	// first update reached the service; End is when the new global model
	// was installed and evaluated.
	Start, FirstArrival, End sim.Duration
	// ACT is the aggregation completion time: End − FirstArrival for
	// workload rounds, End − Start when updates are injected directly.
	ACT sim.Duration
	// Updates actually aggregated into the new global model.
	Updates int
	// AggsCreated is new sandbox creations during the round (Fig. 8(c)).
	AggsCreated int
	// AggsActive is aggregator instances that participated.
	AggsActive int
	// NodesUsed is worker nodes that hosted aggregation work (Fig. 8(d)).
	NodesUsed int
	// CPUTime is the cluster CPU consumed during the round under the
	// system's own accounting (usage for LIFL/SL, reservation for SF).
	CPUTime sim.Duration
}

// Service is the common system-under-test interface.
type Service interface {
	Name() string
	// Global returns the current global model.
	Global() *tensor.Tensor
	// SetGlobal replaces the global model between rounds. The cross-cell
	// fabric (internal/cell) uses it to install the federated global after
	// each cross-cell fold; it must not be called while a round is in
	// flight.
	SetGlobal(*tensor.Tensor)
	// RunRound executes one synchronous round over the given client jobs;
	// done fires with the result after the new global model is evaluated.
	RunRound(round int, jobs []ClientJob, done func(RoundResult))
	// ActiveAggregators returns currently live aggregator instances
	// (Fig. 10(b,e)).
	ActiveAggregators() int
	// CPUTime returns cumulative aggregation-service CPU cost under the
	// system's accounting model.
	CPUTime() sim.Duration
	// RetireRound evicts every control-plane record belonging to rounds
	// <= last: round-named registrations (sockmap entries and gateway
	// routes, or broker topics), retained round state and TAG, buffered
	// eBPF metric samples, and any shm references still parked on retired
	// names. Eviction is bookkeeping, not schedule — it must never
	// terminate sandboxes, charge CPU, or touch the event queue, so
	// fixed-seed Reports are byte-identical whether or not (and how
	// aggressively) the caller retires. core's round loop calls it with
	// round − RunConfig.RetainRounds after each round closes.
	RetireRound(last int)
	// Finalize settles deferred costs (sidecar idle drain, reservations)
	// before reading final counters.
	Finalize()
}

// newGlobal builds the round-0 global model with a deterministic non-zero
// fill so aggregation arithmetic is visible in tests.
func newGlobal(m model.Spec) *tensor.Tensor {
	t := m.NewTensor()
	for i := range t.Data {
		t.Data[i] = float32(i%17) * 0.01
	}
	return t
}
