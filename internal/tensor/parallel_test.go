package tensor

import (
	"math"
	"sync"
	"testing"
)

// mkTensor fills a deterministic, irregular pattern long enough to clear
// MinParallelElems with a non-multiple-of-shard tail.
func mkTensor(n int, salt float64) *Tensor {
	t := New(n)
	for i := range t.Data {
		t.Data[i] = float32(math.Sin(float64(i)*0.37+salt) * 3.25)
	}
	return t
}

// TestShardedFoldBitIdentical pins the fixed-shape reduction-tree
// invariant: the accumulator's fold is byte-for-byte identical for any
// worker count, because shard boundaries depend only on the vector length
// and the fold is element-wise.
func TestShardedFoldBitIdentical(t *testing.T) {
	const n = MinParallelElems + 1234 // force the sharded path with a ragged tail
	const updates = 9
	ref := NewAccumulator(n)
	for k := 0; k < updates; k++ {
		if err := ref.Add(mkTensor(n, float64(k)), float64(k+1)*1.5); err != nil {
			t.Fatal(err)
		}
	}
	refOut := New(n)
	if err := ref.MeanInto(refOut); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 3, 8, 64} {
		acc := NewAccumulator(n)
		acc.SetWorkers(w)
		for k := 0; k < updates; k++ {
			if err := acc.Add(mkTensor(n, float64(k)), float64(k+1)*1.5); err != nil {
				t.Fatal(err)
			}
		}
		out := New(n)
		if err := acc.MeanInto(out); err != nil {
			t.Fatal(err)
		}
		for i := range out.Data {
			if out.Data[i] != refOut.Data[i] {
				t.Fatalf("workers=%d: element %d differs: %x vs %x",
					w, i, math.Float32bits(out.Data[i]), math.Float32bits(refOut.Data[i]))
			}
		}
	}
}

// TestShardedFoldShortVectorFallsBackSerial checks the threshold: the
// default down-scaled model vectors (thousands of elements) must never pay
// goroutine handoff, and the result is of course still identical.
func TestShardedFoldShortVectorFallsBackSerial(t *testing.T) {
	const n = 2816 // ResNet-18 at the default model.PhysScale
	ref := NewAccumulator(n)
	par := NewAccumulator(n)
	par.SetWorkers(16)
	x := mkTensor(n, 0.5)
	if err := ref.Add(x, 2); err != nil {
		t.Fatal(err)
	}
	if err := par.Add(x, 2); err != nil {
		t.Fatal(err)
	}
	a, b := New(n), New(n)
	if err := ref.MeanInto(a); err != nil {
		t.Fatal(err)
	}
	if err := par.MeanInto(b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("element %d differs on the short-vector path", i)
		}
	}
}

func TestScaleAddPMatchesScaleAdd(t *testing.T) {
	const n = MinParallelElems + 777
	o := mkTensor(n, 1.25)
	ref := mkTensor(n, 9.5)
	if err := ref.ScaleAdd(0.75, 1.5, o); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 3, 8} {
		got := mkTensor(n, 9.5)
		if err := got.ScaleAddP(0.75, 1.5, o, w); err != nil {
			t.Fatal(err)
		}
		for i := range got.Data {
			if got.Data[i] != ref.Data[i] {
				t.Fatalf("workers=%d: element %d differs", w, i)
			}
		}
	}
	short := New(3)
	if err := short.ScaleAddP(1, 1, New(4), 2); err == nil {
		t.Fatal("shape mismatch not rejected")
	}
}

// TestParallelFoldRace is the -race stress test of the sharded fold: many
// concurrent *independent* accumulators each folding with a worker pool,
// which exercises the shard handout under contention. (A single
// Accumulator is not safe for concurrent Add calls — the pool lives
// *inside* one fold — so the race surface is the shard sweep itself.)
func TestParallelFoldRace(t *testing.T) {
	const n = MinParallelElems + 100
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(salt float64) {
			defer wg.Done()
			acc := NewAccumulator(n)
			acc.SetWorkers(8)
			for k := 0; k < 5; k++ {
				if err := acc.Add(mkTensor(n, salt+float64(k)), 1); err != nil {
					t.Error(err)
					return
				}
			}
			out := New(n)
			if err := acc.MeanInto(out); err != nil {
				t.Error(err)
			}
		}(float64(g))
	}
	wg.Wait()
}
