package tensor

// The fixed-shape reduction tree: element-range sharding for the float64
// aggregation fold. The parameter vector is cut into fixed-size shards
// whose boundaries are a pure function of the vector length — never of the
// worker count — and every shard folds its element range in ascending
// index order. Because the fold is element-wise (sum[i] only ever combines
// with x[i]), each element's float64 accumulation sequence is exactly the
// serial left fold's, so the result is bit-identical for ANY worker count,
// including 1. Workers only change which goroutine sweeps which shard.
//
// This is what makes the Workers knob safe under the repo's golden rule
// (fixed seed ⇒ byte-identical Report): parallelism re-orders work in
// time, never re-associates floating-point arithmetic.

import (
	"fmt"

	"repro/internal/par"
)

func errShape(a, b int) error {
	return fmt.Errorf("%w: %d vs %d", ErrShape, a, b)
}

const (
	// MinParallelElems is the vector length below which sharded entry
	// points fall back to the serial sweep: the default down-scaled models
	// (model.PhysScale trims ResNet-18 to 2,816 physical elements) would
	// pay goroutine handoff for microseconds of arithmetic. Full-fidelity
	// vectors (millions of elements) clear it easily.
	MinParallelElems = 1 << 15

	// foldShardElems is the fixed shard size. Boundaries are multiples of
	// this regardless of worker count — the "fixed shape" of the tree.
	foldShardElems = 1 << 14
)

// forShards sweeps [0, n) as fixed-boundary shards on up to `workers`
// goroutines. fn must touch only its [lo, hi) element range.
func forShards(workers, n int, fn func(lo, hi int)) {
	if workers <= 1 || n < MinParallelElems {
		fn(0, n)
		return
	}
	shards := (n + foldShardElems - 1) / foldShardElems
	par.Do(workers, shards, func(s int) {
		lo := s * foldShardElems
		hi := lo + foldShardElems
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// SetWorkers bounds the goroutine pool the accumulator's folds may use
// (<= 1, the default, keeps every sweep serial). The result of Add and
// MeanInto is bit-identical for any setting — see the package notes on the
// fixed-shape reduction tree. Not safe to change while a fold is running.
func (a *Accumulator) SetWorkers(w int) { a.workers = w }

// addSharded is Add's arithmetic on the fixed-shape reduction tree. The
// serial case loops directly (no closure) so the steady-state eager fold
// stays zero-allocation (TestAccumulatorAddAllocs).
func (a *Accumulator) addSharded(x *Tensor, w float64) {
	sum := a.sum
	if a.workers <= 1 || len(sum) < MinParallelElems {
		for i, v := range x.Data {
			sum[i] += w * float64(v)
		}
		return
	}
	forShards(a.workers, len(sum), func(lo, hi int) {
		for i, v := range x.Data[lo:hi] {
			sum[lo+i] += w * float64(v)
		}
	})
}

// meanSharded is MeanInto's divide-and-narrow on the same shard shape.
func (a *Accumulator) meanSharded(dst *Tensor) {
	total := a.total
	if a.workers <= 1 || len(a.sum) < MinParallelElems {
		for i, v := range a.sum {
			dst.Data[i] = float32(v / total)
		}
		return
	}
	forShards(a.workers, len(a.sum), func(lo, hi int) {
		for i, v := range a.sum[lo:hi] {
			dst.Data[lo+i] = float32(v / total)
		}
	})
}

// ScaleAddP is ScaleAdd on the fixed-shape shard sweep: t = a*t + b*o
// computed on up to `workers` goroutines, bit-identical to ScaleAdd for
// any worker count (element-wise arithmetic, fixed shard boundaries).
// Short vectors fall back to the serial sweep.
func (t *Tensor) ScaleAddP(a, b float32, o *Tensor, workers int) error {
	if workers <= 1 || len(t.Data) < MinParallelElems {
		return t.ScaleAdd(a, b, o)
	}
	if len(t.Data) != len(o.Data) {
		return errShape(len(t.Data), len(o.Data))
	}
	forShards(workers, len(t.Data), func(lo, hi int) {
		for i, v := range o.Data[lo:hi] {
			t.Data[lo+i] = a*t.Data[lo+i] + b*v
		}
	})
	return nil
}
