// Package tensor implements the dense parameter vectors that carry model
// updates through LIFL. Aggregation arithmetic (FedAvg weighted averaging,
// cumulative accumulation) runs on real float32 data so correctness is
// testable, while the *virtual* byte size — the size the paper's cost models
// charge for — may be far larger than the physical backing array. A
// ResNet-152 update is ~232 MB; shipping that through an in-process simulator
// thousands of times would only slow the experiments, so large models carry a
// down-scaled physical vector (see internal/model) and a full-size virtual
// length. Every data-plane cost in the simulator uses VirtualBytes.
//
// Layer (DESIGN.md): leaf — dense parameter vectors + aggregation
// arithmetic; see the tensor hot-path invariants in DESIGN.md. The
// sharded fold in parallel.go parallelizes Accumulator folds over a
// fixed-shape reduction tree: shard boundaries are a pure function of the
// vector length, so float64 accumulation order per element — and hence
// the float32 result — is bit-identical for any worker count.
package tensor
