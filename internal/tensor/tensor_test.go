package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-4 }

func TestNewAndVirtualGeometry(t *testing.T) {
	v := NewVirtual(100, 1_000_000)
	if v.Len() != 100 {
		t.Fatalf("physical len = %d", v.Len())
	}
	if v.VirtualBytes() != 4_000_000 {
		t.Fatalf("virtual bytes = %d", v.VirtualBytes())
	}
	if v.PhysicalBytes() != 400 {
		t.Fatalf("physical bytes = %d", v.PhysicalBytes())
	}
	// Virtual length may never be smaller than physical.
	w := NewVirtual(100, 10)
	if w.VirtualLen != 100 {
		t.Fatalf("virtual clamped to %d", w.VirtualLen)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("clone shares backing array")
	}
	if b.VirtualLen != a.VirtualLen {
		t.Fatal("clone lost virtual length")
	}
}

func TestAddSubScaleFill(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3})
	b := FromSlice([]float32{10, 20, 30})
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.Data[2] != 33 {
		t.Fatalf("add: %v", a.Data)
	}
	if err := a.Sub(b); err != nil {
		t.Fatal(err)
	}
	if a.Data[1] != 2 {
		t.Fatalf("sub: %v", a.Data)
	}
	a.Scale(3)
	if a.Data[0] != 3 {
		t.Fatalf("scale: %v", a.Data)
	}
	a.Fill(7)
	a.Zero()
	for _, v := range a.Data {
		if v != 0 {
			t.Fatalf("zero: %v", a.Data)
		}
	}
}

func TestShapeMismatchErrors(t *testing.T) {
	a, b := New(3), New(4)
	if err := a.Add(b); !errors.Is(err, ErrShape) {
		t.Fatalf("Add: %v", err)
	}
	if err := a.AddScaled(1, b); !errors.Is(err, ErrShape) {
		t.Fatalf("AddScaled: %v", err)
	}
	if err := a.Sub(b); !errors.Is(err, ErrShape) {
		t.Fatalf("Sub: %v", err)
	}
	if _, err := a.Dot(b); !errors.Is(err, ErrShape) {
		t.Fatalf("Dot: %v", err)
	}
	if _, err := a.MaxAbsDiff(b); !errors.Is(err, ErrShape) {
		t.Fatalf("MaxAbsDiff: %v", err)
	}
}

func TestDotAndNorm(t *testing.T) {
	a := FromSlice([]float32{3, 4})
	if !almostEq(a.Norm2(), 5) {
		t.Fatalf("norm = %v", a.Norm2())
	}
	b := FromSlice([]float32{1, 2})
	d, err := a.Dot(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d, 11) {
		t.Fatalf("dot = %v", d)
	}
}

func TestWeightedMeanMatchesManual(t *testing.T) {
	xs := []*Tensor{
		FromSlice([]float32{1, 10}),
		FromSlice([]float32{3, 30}),
		FromSlice([]float32{5, 50}),
	}
	ws := []float64{1, 2, 1}
	got, err := WeightedMean(xs, ws)
	if err != nil {
		t.Fatal(err)
	}
	// (1·1 + 3·2 + 5·1)/4 = 3, (10+60+50)/4 = 30.
	if !almostEq(float64(got.Data[0]), 3) || !almostEq(float64(got.Data[1]), 30) {
		t.Fatalf("mean = %v", got.Data)
	}
}

func TestWeightedMeanErrors(t *testing.T) {
	if _, err := WeightedMean(nil, nil); err == nil {
		t.Fatal("empty input must error")
	}
	xs := []*Tensor{New(2)}
	if _, err := WeightedMean(xs, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := WeightedMean(xs, []float64{-1}); err == nil {
		t.Fatal("negative weight must error")
	}
	if _, err := WeightedMean(xs, []float64{0}); err == nil {
		t.Fatal("zero total weight must error")
	}
	if _, err := WeightedMean([]*Tensor{New(2), New(3)}, []float64{1, 1}); !errors.Is(err, ErrShape) {
		t.Fatal("shape mismatch must error")
	}
}

// Property: the weighted mean lies within [min, max] of the inputs
// element-wise (convexity).
func TestWeightedMeanConvexity(t *testing.T) {
	f := func(vals [4][3]int8, wsRaw [4]uint8) bool {
		xs := make([]*Tensor, 4)
		ws := make([]float64, 4)
		for k := range xs {
			data := make([]float32, 3)
			for i := range data {
				data[i] = float32(vals[k][i])
			}
			xs[k] = FromSlice(data)
			ws[k] = float64(wsRaw[k]%16) + 1
		}
		m, err := WeightedMean(xs, ws)
		if err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			lo, hi := float32(127), float32(-128)
			for k := range xs {
				if xs[k].Data[i] < lo {
					lo = xs[k].Data[i]
				}
				if xs[k].Data[i] > hi {
					hi = xs[k].Data[i]
				}
			}
			if m.Data[i] < lo-1e-3 || m.Data[i] > hi+1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AddScaled is linear — t + a·x + b·x == t + (a+b)·x.
func TestAddScaledLinearity(t *testing.T) {
	f := func(base [4]int8, x [4]int8, aRaw, bRaw int8) bool {
		mk := func(v [4]int8) *Tensor {
			d := make([]float32, 4)
			for i := range d {
				d[i] = float32(v[i])
			}
			return FromSlice(d)
		}
		a, b := float32(aRaw)/16, float32(bRaw)/16
		t1 := mk(base)
		if err := t1.AddScaled(a, mk(x)); err != nil {
			return false
		}
		if err := t1.AddScaled(b, mk(x)); err != nil {
			return false
		}
		t2 := mk(base)
		if err := t2.AddScaled(a+b, mk(x)); err != nil {
			return false
		}
		d, err := t1.MaxAbsDiff(t2)
		return err == nil && d < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: weighted mean of identical tensors is that tensor.
func TestWeightedMeanIdempotent(t *testing.T) {
	f := func(vals [3]int8, n uint8) bool {
		k := int(n%5) + 1
		base := FromSlice([]float32{float32(vals[0]), float32(vals[1]), float32(vals[2])})
		xs := make([]*Tensor, k)
		ws := make([]float64, k)
		for i := range xs {
			xs[i] = base.Clone()
			ws[i] = float64(i + 1)
		}
		m, err := WeightedMean(xs, ws)
		if err != nil {
			return false
		}
		d, err := m.MaxAbsDiff(base)
		return err == nil && d < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMeanIntoMatchesWeightedMean(t *testing.T) {
	xs := []*Tensor{
		FromSlice([]float32{1, 2, 3}),
		FromSlice([]float32{4, 5, 6}),
		FromSlice([]float32{-2, 0, 9}),
	}
	ws := []float64{1, 2.5, 0.25}
	want, err := WeightedMean(xs, ws)
	if err != nil {
		t.Fatal(err)
	}
	dst := New(3)
	if err := WeightedMeanInto(dst, xs, ws); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if dst.Data[i] != want.Data[i] {
			t.Fatalf("element %d: %v vs %v", i, dst.Data[i], want.Data[i])
		}
	}
	if dst.VirtualLen != xs[0].VirtualLen {
		t.Fatalf("virtual len %d", dst.VirtualLen)
	}
}

func TestWeightedMeanIntoErrors(t *testing.T) {
	if err := WeightedMeanInto(New(1), nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	xs := []*Tensor{New(3)}
	if err := WeightedMeanInto(New(3), xs, []float64{1, 2}); err == nil {
		t.Error("weight count mismatch accepted")
	}
	if err := WeightedMeanInto(New(3), xs, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if err := WeightedMeanInto(New(3), xs, []float64{0}); err == nil {
		t.Error("zero total weight accepted")
	}
	if err := WeightedMeanInto(New(2), xs, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("dst shape mismatch: %v", err)
	}
	if err := WeightedMeanInto(New(3), []*Tensor{New(3), New(2)}, []float64{1, 1}); !errors.Is(err, ErrShape) {
		t.Errorf("input shape mismatch: %v", err)
	}
}

// TestWeightedMeanIntoAllocs is the pooled-accumulator regression guard:
// steady-state aggregation into a caller-owned tensor must not allocate.
func TestWeightedMeanIntoAllocs(t *testing.T) {
	xs := []*Tensor{New(512), New(512), New(512)}
	for _, x := range xs {
		x.Fill(0.25)
	}
	ws := []float64{1, 2, 3}
	dst := New(512)
	// Warm the pool.
	if err := WeightedMeanInto(dst, xs, ws); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := WeightedMeanInto(dst, xs, ws); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("WeightedMeanInto allocates %.2f/op, want 0 steady-state", avg)
	}
}

func TestScaleAddFusesScaleAndAdd(t *testing.T) {
	a := FromSlice([]float32{1, -2, 3})
	o := FromSlice([]float32{10, 20, 30})
	ref := a.Clone()
	ref.Scale(0.5)
	if err := ref.AddScaled(2, o); err != nil {
		t.Fatal(err)
	}
	if err := a.ScaleAdd(0.5, 2, o); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != ref.Data[i] {
			t.Fatalf("element %d: fused %v vs two-pass %v", i, a.Data[i], ref.Data[i])
		}
	}
	if err := a.ScaleAdd(1, 1, New(2)); !errors.Is(err, ErrShape) {
		t.Errorf("shape mismatch: %v", err)
	}
}

// TestAccumulatorMatchesWeightedMean: the eager cumulative path and the
// lazy batch reference must agree exactly (the §2.1 equivalence LIFL's
// eager aggregation relies on, at the arithmetic layer).
func TestAccumulatorMatchesWeightedMean(t *testing.T) {
	xs := []*Tensor{
		FromSlice([]float32{0.5, 1.5, -3}),
		FromSlice([]float32{2, 2, 2}),
		FromSlice([]float32{7, -1, 0.25}),
	}
	ws := []float64{3, 1, 0.5}
	want, err := WeightedMean(xs, ws)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewAccumulator(3)
	for k, x := range xs {
		if err := acc.Add(x, ws[k]); err != nil {
			t.Fatal(err)
		}
	}
	got := New(3)
	if err := acc.MeanInto(got); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d: eager %v vs lazy %v", i, got.Data[i], want.Data[i])
		}
	}
	if acc.Count() != 3 || acc.Total() != 4.5 {
		t.Fatalf("count=%d total=%v", acc.Count(), acc.Total())
	}
	acc.Reset()
	if acc.Count() != 0 || acc.Total() != 0 {
		t.Fatal("reset incomplete")
	}
	if err := acc.MeanInto(got); err == nil {
		t.Fatal("empty accumulator produced a mean")
	}
}

func TestAccumulatorErrors(t *testing.T) {
	acc := NewAccumulator(3)
	if err := acc.Add(New(2), 1); !errors.Is(err, ErrShape) {
		t.Errorf("shape mismatch: %v", err)
	}
	if err := acc.Add(New(3), 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := acc.Add(New(3), -1); err == nil {
		t.Error("negative weight accepted")
	}
	if err := acc.Add(New(3), 1); err != nil {
		t.Fatal(err)
	}
	if err := acc.MeanInto(New(2)); !errors.Is(err, ErrShape) {
		t.Errorf("MeanInto shape mismatch: %v", err)
	}
}

// TestAccumulatorAddAllocs: the eager accumulate path allocates nothing.
func TestAccumulatorAddAllocs(t *testing.T) {
	acc := NewAccumulator(512)
	x := New(512)
	x.Fill(1)
	dst := New(512)
	avg := testing.AllocsPerRun(200, func() {
		if err := acc.Add(x, 2); err != nil {
			t.Fatal(err)
		}
		if err := acc.MeanInto(dst); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Accumulator path allocates %.2f/op, want 0", avg)
	}
}
