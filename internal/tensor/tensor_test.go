package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-4 }

func TestNewAndVirtualGeometry(t *testing.T) {
	v := NewVirtual(100, 1_000_000)
	if v.Len() != 100 {
		t.Fatalf("physical len = %d", v.Len())
	}
	if v.VirtualBytes() != 4_000_000 {
		t.Fatalf("virtual bytes = %d", v.VirtualBytes())
	}
	if v.PhysicalBytes() != 400 {
		t.Fatalf("physical bytes = %d", v.PhysicalBytes())
	}
	// Virtual length may never be smaller than physical.
	w := NewVirtual(100, 10)
	if w.VirtualLen != 100 {
		t.Fatalf("virtual clamped to %d", w.VirtualLen)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("clone shares backing array")
	}
	if b.VirtualLen != a.VirtualLen {
		t.Fatal("clone lost virtual length")
	}
}

func TestAddSubScaleFill(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3})
	b := FromSlice([]float32{10, 20, 30})
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.Data[2] != 33 {
		t.Fatalf("add: %v", a.Data)
	}
	if err := a.Sub(b); err != nil {
		t.Fatal(err)
	}
	if a.Data[1] != 2 {
		t.Fatalf("sub: %v", a.Data)
	}
	a.Scale(3)
	if a.Data[0] != 3 {
		t.Fatalf("scale: %v", a.Data)
	}
	a.Fill(7)
	a.Zero()
	for _, v := range a.Data {
		if v != 0 {
			t.Fatalf("zero: %v", a.Data)
		}
	}
}

func TestShapeMismatchErrors(t *testing.T) {
	a, b := New(3), New(4)
	if err := a.Add(b); !errors.Is(err, ErrShape) {
		t.Fatalf("Add: %v", err)
	}
	if err := a.AddScaled(1, b); !errors.Is(err, ErrShape) {
		t.Fatalf("AddScaled: %v", err)
	}
	if err := a.Sub(b); !errors.Is(err, ErrShape) {
		t.Fatalf("Sub: %v", err)
	}
	if _, err := a.Dot(b); !errors.Is(err, ErrShape) {
		t.Fatalf("Dot: %v", err)
	}
	if _, err := a.MaxAbsDiff(b); !errors.Is(err, ErrShape) {
		t.Fatalf("MaxAbsDiff: %v", err)
	}
}

func TestDotAndNorm(t *testing.T) {
	a := FromSlice([]float32{3, 4})
	if !almostEq(a.Norm2(), 5) {
		t.Fatalf("norm = %v", a.Norm2())
	}
	b := FromSlice([]float32{1, 2})
	d, err := a.Dot(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d, 11) {
		t.Fatalf("dot = %v", d)
	}
}

func TestWeightedMeanMatchesManual(t *testing.T) {
	xs := []*Tensor{
		FromSlice([]float32{1, 10}),
		FromSlice([]float32{3, 30}),
		FromSlice([]float32{5, 50}),
	}
	ws := []float64{1, 2, 1}
	got, err := WeightedMean(xs, ws)
	if err != nil {
		t.Fatal(err)
	}
	// (1·1 + 3·2 + 5·1)/4 = 3, (10+60+50)/4 = 30.
	if !almostEq(float64(got.Data[0]), 3) || !almostEq(float64(got.Data[1]), 30) {
		t.Fatalf("mean = %v", got.Data)
	}
}

func TestWeightedMeanErrors(t *testing.T) {
	if _, err := WeightedMean(nil, nil); err == nil {
		t.Fatal("empty input must error")
	}
	xs := []*Tensor{New(2)}
	if _, err := WeightedMean(xs, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := WeightedMean(xs, []float64{-1}); err == nil {
		t.Fatal("negative weight must error")
	}
	if _, err := WeightedMean(xs, []float64{0}); err == nil {
		t.Fatal("zero total weight must error")
	}
	if _, err := WeightedMean([]*Tensor{New(2), New(3)}, []float64{1, 1}); !errors.Is(err, ErrShape) {
		t.Fatal("shape mismatch must error")
	}
}

// Property: the weighted mean lies within [min, max] of the inputs
// element-wise (convexity).
func TestWeightedMeanConvexity(t *testing.T) {
	f := func(vals [4][3]int8, wsRaw [4]uint8) bool {
		xs := make([]*Tensor, 4)
		ws := make([]float64, 4)
		for k := range xs {
			data := make([]float32, 3)
			for i := range data {
				data[i] = float32(vals[k][i])
			}
			xs[k] = FromSlice(data)
			ws[k] = float64(wsRaw[k]%16) + 1
		}
		m, err := WeightedMean(xs, ws)
		if err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			lo, hi := float32(127), float32(-128)
			for k := range xs {
				if xs[k].Data[i] < lo {
					lo = xs[k].Data[i]
				}
				if xs[k].Data[i] > hi {
					hi = xs[k].Data[i]
				}
			}
			if m.Data[i] < lo-1e-3 || m.Data[i] > hi+1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AddScaled is linear — t + a·x + b·x == t + (a+b)·x.
func TestAddScaledLinearity(t *testing.T) {
	f := func(base [4]int8, x [4]int8, aRaw, bRaw int8) bool {
		mk := func(v [4]int8) *Tensor {
			d := make([]float32, 4)
			for i := range d {
				d[i] = float32(v[i])
			}
			return FromSlice(d)
		}
		a, b := float32(aRaw)/16, float32(bRaw)/16
		t1 := mk(base)
		if err := t1.AddScaled(a, mk(x)); err != nil {
			return false
		}
		if err := t1.AddScaled(b, mk(x)); err != nil {
			return false
		}
		t2 := mk(base)
		if err := t2.AddScaled(a+b, mk(x)); err != nil {
			return false
		}
		d, err := t1.MaxAbsDiff(t2)
		return err == nil && d < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: weighted mean of identical tensors is that tensor.
func TestWeightedMeanIdempotent(t *testing.T) {
	f := func(vals [3]int8, n uint8) bool {
		k := int(n%5) + 1
		base := FromSlice([]float32{float32(vals[0]), float32(vals[1]), float32(vals[2])})
		xs := make([]*Tensor, k)
		ws := make([]float64, k)
		for i := range xs {
			xs[i] = base.Clone()
			ws[i] = float64(i + 1)
		}
		m, err := WeightedMean(xs, ws)
		if err != nil {
			return false
		}
		d, err := m.MaxAbsDiff(base)
		return err == nil && d < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
