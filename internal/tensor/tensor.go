package tensor

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrShape is returned when two tensors with different lengths are combined.
var ErrShape = errors.New("tensor: shape mismatch")

// Tensor is a flat float32 parameter vector. VirtualLen is the number of
// parameters the tensor represents; it is >= len(Data). When VirtualLen >
// len(Data) the tensor is a down-scaled stand-in whose arithmetic is still
// exact over Data.
type Tensor struct {
	Data       []float32
	VirtualLen int
}

// New returns a zero tensor with physical length n (virtual length equal).
func New(n int) *Tensor {
	return &Tensor{Data: make([]float32, n), VirtualLen: n}
}

// NewVirtual returns a zero tensor with physical length phys representing
// virtualLen parameters.
func NewVirtual(phys, virtualLen int) *Tensor {
	if virtualLen < phys {
		virtualLen = phys
	}
	return &Tensor{Data: make([]float32, phys), VirtualLen: virtualLen}
}

// FromSlice wraps (copies) the given values.
func FromSlice(v []float32) *Tensor {
	d := make([]float32, len(v))
	copy(d, v)
	return &Tensor{Data: d, VirtualLen: len(v)}
}

// Len returns the physical element count.
func (t *Tensor) Len() int { return len(t.Data) }

// VirtualBytes returns the byte size the data plane charges for this tensor:
// 4 bytes per represented (virtual) parameter.
func (t *Tensor) VirtualBytes() uint64 { return uint64(t.VirtualLen) * 4 }

// PhysicalBytes returns the bytes actually resident in this process.
func (t *Tensor) PhysicalBytes() uint64 { return uint64(len(t.Data)) * 4 }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.Data))
	copy(d, t.Data)
	return &Tensor{Data: d, VirtualLen: t.VirtualLen}
}

// Zero sets every element to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Scale multiplies every element by a in place.
func (t *Tensor) Scale(a float32) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// Add accumulates o into t in place: t += o.
func (t *Tensor) Add(o *Tensor) error {
	if len(t.Data) != len(o.Data) {
		return fmt.Errorf("%w: %d vs %d", ErrShape, len(t.Data), len(o.Data))
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
	return nil
}

// AddScaled accumulates a*o into t in place: t += a*o. This is the inner
// loop of weighted FedAvg and of eager cumulative averaging.
func (t *Tensor) AddScaled(a float32, o *Tensor) error {
	if len(t.Data) != len(o.Data) {
		return fmt.Errorf("%w: %d vs %d", ErrShape, len(t.Data), len(o.Data))
	}
	for i, v := range o.Data {
		t.Data[i] += a * v
	}
	return nil
}

// ScaleAdd is the fused scale-and-add update t = a*t + b*o, computed in a
// single pass over both vectors — for callers that would otherwise pair
// Scale with AddScaled (two sweeps, or a Clone when o must be preserved).
// It carries the per-round model-install path of momentum server
// optimizers (fedavg.FedAvgM's velocity decay and server step; see
// BenchmarkFedAvgMApply) and completes the in-place arithmetic family
// alongside WeightedMeanInto and Accumulator.
func (t *Tensor) ScaleAdd(a, b float32, o *Tensor) error {
	if len(t.Data) != len(o.Data) {
		return fmt.Errorf("%w: %d vs %d", ErrShape, len(t.Data), len(o.Data))
	}
	for i, v := range o.Data {
		t.Data[i] = a*t.Data[i] + b*v
	}
	return nil
}

// Sub computes t -= o in place.
func (t *Tensor) Sub(o *Tensor) error {
	if len(t.Data) != len(o.Data) {
		return fmt.Errorf("%w: %d vs %d", ErrShape, len(t.Data), len(o.Data))
	}
	for i, v := range o.Data {
		t.Data[i] -= v
	}
	return nil
}

// Dot returns the inner product of t and o.
func (t *Tensor) Dot(o *Tensor) (float64, error) {
	if len(t.Data) != len(o.Data) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrShape, len(t.Data), len(o.Data))
	}
	var s float64
	for i, v := range o.Data {
		s += float64(t.Data[i]) * float64(v)
	}
	return s, nil
}

// Norm2 returns the L2 norm of t.
func (t *Tensor) Norm2() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns the largest absolute element-wise difference, used by
// tests to compare aggregation results within float tolerance.
func (t *Tensor) MaxAbsDiff(o *Tensor) (float64, error) {
	if len(t.Data) != len(o.Data) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrShape, len(t.Data), len(o.Data))
	}
	var m float64
	for i, v := range o.Data {
		d := math.Abs(float64(t.Data[i]) - float64(v))
		if d > m {
			m = d
		}
	}
	return m, nil
}

// accPool recycles the float64 accumulation buffers behind WeightedMeanInto
// so steady-state aggregation performs zero heap allocations. Buffers are
// held via a pointer-to-struct so Get/Put never box a slice header.
var accPool = sync.Pool{New: func() any { return new(accBuf) }}

type accBuf struct{ f []float64 }

// getAcc returns a zeroed accumulator of length n from the pool.
func getAcc(n int) *accBuf {
	b := accPool.Get().(*accBuf)
	if cap(b.f) < n {
		b.f = make([]float64, n)
	} else {
		b.f = b.f[:n]
		for i := range b.f {
			b.f[i] = 0
		}
	}
	return b
}

func putAcc(b *accBuf) { accPool.Put(b) }

// WeightedMean returns sum(w[k]*x[k]) / sum(w[k]) over the given tensors —
// the reference (lazy, batch) form of FedAvg aggregation, Eq. (1) of the
// paper with f = FedAvg. All tensors must share the physical length of the
// first; the result inherits its virtual length.
func WeightedMean(xs []*Tensor, ws []float64) (*Tensor, error) {
	if len(xs) == 0 {
		return nil, errors.New("tensor: WeightedMean of zero tensors")
	}
	out := NewVirtual(xs[0].Len(), xs[0].VirtualLen)
	if err := WeightedMeanInto(out, xs, ws); err != nil {
		return nil, err
	}
	return out, nil
}

// WeightedMeanInto computes sum(w[k]*x[k]) / sum(w[k]) into dst, which must
// have the physical length of xs[0]; dst adopts xs[0]'s virtual length. The
// float64 accumulation buffer comes from an internal pool, so the
// steady-state cost is zero heap allocations (guarded by an AllocsPerRun
// regression test) — the allocation-lean form for per-round aggregation.
func WeightedMeanInto(dst *Tensor, xs []*Tensor, ws []float64) error {
	if len(xs) == 0 {
		return errors.New("tensor: WeightedMean of zero tensors")
	}
	if len(xs) != len(ws) {
		return fmt.Errorf("tensor: %d tensors but %d weights", len(xs), len(ws))
	}
	var total float64
	for _, w := range ws {
		if w < 0 {
			return fmt.Errorf("tensor: negative weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return errors.New("tensor: zero total weight")
	}
	if dst.Len() != xs[0].Len() {
		return fmt.Errorf("%w: dst has len %d, want %d", ErrShape, dst.Len(), xs[0].Len())
	}
	acc := getAcc(xs[0].Len())
	defer putAcc(acc)
	for k, x := range xs {
		if x.Len() != dst.Len() {
			return fmt.Errorf("%w: tensor %d has len %d, want %d", ErrShape, k, x.Len(), dst.Len())
		}
		w := ws[k]
		for i, v := range x.Data {
			acc.f[i] += w * float64(v)
		}
	}
	for i := range dst.Data {
		dst.Data[i] = float32(acc.f[i] / total)
	}
	dst.VirtualLen = xs[0].VirtualLen
	return nil
}

// Accumulator is the eager (cumulative) counterpart of WeightedMean: fold
// (update, weight) pairs in as they arrive — no Clone, no per-update
// allocation, float64 running sums for numerical stability — and emit the
// weighted mean on demand. This is the arithmetic core behind §2.1's
// "cumulative averaging makes the eager method feasible for FedAvg";
// fedavg.FedAvg delegates to it, and it is reusable across rounds via Reset.
type Accumulator struct {
	sum   []float64
	total float64
	count int
	// workers bounds the shard-sweep pool for Add/MeanInto (<= 1 = serial).
	// Folds are bit-identical for any value — see parallel.go.
	workers int
}

// NewAccumulator returns an empty accumulator for physical length n.
func NewAccumulator(n int) *Accumulator {
	return &Accumulator{sum: make([]float64, n)}
}

// Len returns the physical element count.
func (a *Accumulator) Len() int { return len(a.sum) }

// Count returns how many updates have been folded in.
func (a *Accumulator) Count() int { return a.count }

// Total returns the running weight sum.
func (a *Accumulator) Total() float64 { return a.total }

// Add folds w*x into the running sum: the Clone-avoiding eager accumulate
// path. Weight must be positive.
func (a *Accumulator) Add(x *Tensor, w float64) error {
	if x.Len() != len(a.sum) {
		return fmt.Errorf("%w: update len %d, accumulator len %d", ErrShape, x.Len(), len(a.sum))
	}
	if w <= 0 {
		return fmt.Errorf("tensor: non-positive weight %v", w)
	}
	a.addSharded(x, w)
	a.total += w
	a.count++
	return nil
}

// MeanInto writes the current weighted mean into dst (physical lengths must
// match) without allocating. It errors if nothing has been accumulated.
func (a *Accumulator) MeanInto(dst *Tensor) error {
	if a.count == 0 {
		return errors.New("tensor: empty accumulator")
	}
	if dst.Len() != len(a.sum) {
		return fmt.Errorf("%w: dst len %d, accumulator len %d", ErrShape, dst.Len(), len(a.sum))
	}
	a.meanSharded(dst)
	return nil
}

// Reset clears the accumulator for reuse in the next round.
func (a *Accumulator) Reset() {
	for i := range a.sum {
		a.sum[i] = 0
	}
	a.total = 0
	a.count = 0
}
