// Package tensor implements the dense parameter vectors that carry model
// updates through LIFL. Aggregation arithmetic (FedAvg weighted averaging,
// cumulative accumulation) runs on real float32 data so correctness is
// testable, while the *virtual* byte size — the size the paper's cost models
// charge for — may be far larger than the physical backing array. A
// ResNet-152 update is ~232 MB; shipping that through an in-process simulator
// thousands of times would only slow the experiments, so large models carry a
// down-scaled physical vector (see internal/model) and a full-size virtual
// length. Every data-plane cost in the simulator uses VirtualBytes.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned when two tensors with different lengths are combined.
var ErrShape = errors.New("tensor: shape mismatch")

// Tensor is a flat float32 parameter vector. VirtualLen is the number of
// parameters the tensor represents; it is >= len(Data). When VirtualLen >
// len(Data) the tensor is a down-scaled stand-in whose arithmetic is still
// exact over Data.
type Tensor struct {
	Data       []float32
	VirtualLen int
}

// New returns a zero tensor with physical length n (virtual length equal).
func New(n int) *Tensor {
	return &Tensor{Data: make([]float32, n), VirtualLen: n}
}

// NewVirtual returns a zero tensor with physical length phys representing
// virtualLen parameters.
func NewVirtual(phys, virtualLen int) *Tensor {
	if virtualLen < phys {
		virtualLen = phys
	}
	return &Tensor{Data: make([]float32, phys), VirtualLen: virtualLen}
}

// FromSlice wraps (copies) the given values.
func FromSlice(v []float32) *Tensor {
	d := make([]float32, len(v))
	copy(d, v)
	return &Tensor{Data: d, VirtualLen: len(v)}
}

// Len returns the physical element count.
func (t *Tensor) Len() int { return len(t.Data) }

// VirtualBytes returns the byte size the data plane charges for this tensor:
// 4 bytes per represented (virtual) parameter.
func (t *Tensor) VirtualBytes() uint64 { return uint64(t.VirtualLen) * 4 }

// PhysicalBytes returns the bytes actually resident in this process.
func (t *Tensor) PhysicalBytes() uint64 { return uint64(len(t.Data)) * 4 }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.Data))
	copy(d, t.Data)
	return &Tensor{Data: d, VirtualLen: t.VirtualLen}
}

// Zero sets every element to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Scale multiplies every element by a in place.
func (t *Tensor) Scale(a float32) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// Add accumulates o into t in place: t += o.
func (t *Tensor) Add(o *Tensor) error {
	if len(t.Data) != len(o.Data) {
		return fmt.Errorf("%w: %d vs %d", ErrShape, len(t.Data), len(o.Data))
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
	return nil
}

// AddScaled accumulates a*o into t in place: t += a*o. This is the inner
// loop of weighted FedAvg and of eager cumulative averaging.
func (t *Tensor) AddScaled(a float32, o *Tensor) error {
	if len(t.Data) != len(o.Data) {
		return fmt.Errorf("%w: %d vs %d", ErrShape, len(t.Data), len(o.Data))
	}
	for i, v := range o.Data {
		t.Data[i] += a * v
	}
	return nil
}

// Sub computes t -= o in place.
func (t *Tensor) Sub(o *Tensor) error {
	if len(t.Data) != len(o.Data) {
		return fmt.Errorf("%w: %d vs %d", ErrShape, len(t.Data), len(o.Data))
	}
	for i, v := range o.Data {
		t.Data[i] -= v
	}
	return nil
}

// Dot returns the inner product of t and o.
func (t *Tensor) Dot(o *Tensor) (float64, error) {
	if len(t.Data) != len(o.Data) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrShape, len(t.Data), len(o.Data))
	}
	var s float64
	for i, v := range o.Data {
		s += float64(t.Data[i]) * float64(v)
	}
	return s, nil
}

// Norm2 returns the L2 norm of t.
func (t *Tensor) Norm2() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns the largest absolute element-wise difference, used by
// tests to compare aggregation results within float tolerance.
func (t *Tensor) MaxAbsDiff(o *Tensor) (float64, error) {
	if len(t.Data) != len(o.Data) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrShape, len(t.Data), len(o.Data))
	}
	var m float64
	for i, v := range o.Data {
		d := math.Abs(float64(t.Data[i]) - float64(v))
		if d > m {
			m = d
		}
	}
	return m, nil
}

// WeightedMean returns sum(w[k]*x[k]) / sum(w[k]) over the given tensors —
// the reference (lazy, batch) form of FedAvg aggregation, Eq. (1) of the
// paper with f = FedAvg. All tensors must share the physical length of the
// first; the result inherits its virtual length.
func WeightedMean(xs []*Tensor, ws []float64) (*Tensor, error) {
	if len(xs) == 0 {
		return nil, errors.New("tensor: WeightedMean of zero tensors")
	}
	if len(xs) != len(ws) {
		return nil, fmt.Errorf("tensor: %d tensors but %d weights", len(xs), len(ws))
	}
	var total float64
	for _, w := range ws {
		if w < 0 {
			return nil, fmt.Errorf("tensor: negative weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return nil, errors.New("tensor: zero total weight")
	}
	out := NewVirtual(xs[0].Len(), xs[0].VirtualLen)
	acc := make([]float64, xs[0].Len())
	for k, x := range xs {
		if x.Len() != out.Len() {
			return nil, fmt.Errorf("%w: tensor %d has len %d, want %d", ErrShape, k, x.Len(), out.Len())
		}
		w := ws[k]
		for i, v := range x.Data {
			acc[i] += w * float64(v)
		}
	}
	for i := range out.Data {
		out.Data[i] = float32(acc[i] / total)
	}
	return out, nil
}
