package lifl

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/harness"
	"repro/internal/trajstore"
)

// trajScenario shrinks the traj-100k registry entry to n rounds for test
// budgets (the registered entry runs 100K; nightly million-rounds runs 1M)
// and pins one system out of its all-systems sweep axis, so tests that
// need exactly one expanded run still get one.
func trajScenario(t *testing.T, n int, sys SystemKind) Scenario {
	t.Helper()
	sc, ok := GetScenario("traj-100k")
	if !ok {
		t.Fatal("traj-100k not registered")
	}
	sc.MaxRounds = n
	sc.Systems = []SystemKind{sys}
	return sc
}

// sweepTraj expands sc, attaches trajectory sinks under a fresh temp dir,
// sweeps with the given parallelism, and returns the sealed file's bytes.
func sweepTraj(t *testing.T, sc Scenario, parallel int) []byte {
	t.Helper()
	dir := t.TempDir()
	runs := sc.Expand()
	if len(runs) != 1 {
		t.Fatalf("expected 1 run, got %d", len(runs))
	}
	closeTraj, err := harness.AttachTrajectories(runs, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range Sweep(runs, parallel) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if err := closeTraj(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(harness.TrajPath(dir, runs[0]))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTrajectoryDeterministic pins the format's headline contract: a fixed
// seed produces a byte-identical trajectory file whether the run is swept
// serially or in parallel, with a 1- or 8-goroutine staged round loop, or
// driven directly through Run without the harness. 10K rounds spans two
// full blocks plus a remainder at the default block capacity.
func TestTrajectoryDeterministic(t *testing.T) {
	const rounds = 10_000
	base := trajScenario(t, rounds, SystemSF)

	variants := map[string][]byte{}
	for name, f := range map[string]func() []byte{
		"serial-w1": func() (b []byte) {
			sc := base
			sc.Workers = 1
			return sweepTraj(t, sc, 1)
		},
		"serial-w8": func() []byte {
			sc := base
			sc.Workers = 8
			return sweepTraj(t, sc, 1)
		},
		"parallel-w8": func() []byte {
			sc := base
			sc.Workers = 8
			return sweepTraj(t, sc, 4)
		},
		"direct": func() []byte {
			cfg := base.Expand()[0].Cfg
			path := filepath.Join(t.TempDir(), "direct.traj")
			sink, err := trajstore.NewSink(path, cfg, trajstore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cfg.Trajectory = sink
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
			if err := sink.Close(); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			return data
		},
	} {
		variants[name] = f()
	}

	ref := variants["serial-w1"]
	if len(ref) == 0 {
		t.Fatal("empty trajectory file")
	}
	for name, data := range variants {
		if !bytes.Equal(data, ref) {
			t.Errorf("%s trajectory differs from serial-w1 (%d vs %d bytes)", name, len(data), len(ref))
		}
	}
}

// TestTrajectoryIdenticalAcrossRetention pins the eviction half of the
// determinism contract at the file level: the retention window is a memory
// knob only, so the default window, a wide one, and retirement disabled
// must stream byte-identical trajectory files. LIFL is the shape with the
// most per-round control-plane state — the one eviction touches hardest.
func TestTrajectoryIdenticalAcrossRetention(t *testing.T) {
	base := trajScenario(t, 5_000, SystemLIFL).Expand()[0].Cfg
	runWith := func(retain int) []byte {
		cfg := base
		cfg.RetainRounds = retain
		path := filepath.Join(t.TempDir(), "run.traj")
		sink, err := trajstore.NewSink(path, cfg, trajstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Trajectory = sink
		if _, err := Run(cfg); err != nil {
			t.Fatalf("retain=%d: %v", retain, err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	ref := runWith(-1)
	if len(ref) == 0 {
		t.Fatal("empty trajectory file")
	}
	for _, retain := range []int{2, 8} {
		if got := runWith(retain); !bytes.Equal(got, ref) {
			t.Errorf("retain=%d trajectory differs from retain=-1 (%d vs %d bytes)", retain, len(got), len(ref))
		}
	}
}

// TestReplayMatchesLiveRun pins replay fidelity: every scalar the live
// Report carries — reached verdict, time/CPU-to-target, milestone
// crossings, round count — must be re-derivable from the file alone, and
// ReplayAt must return the exact observation the live run streamed.
func TestReplayMatchesLiveRun(t *testing.T) {
	cfg := trajScenario(t, 2000, SystemSF).Expand()[0].Cfg
	cfg.TargetAccuracy = 0.75 // reachable: TinyFL's curve tops out at 0.80
	cfg.Milestones = []float64{0.50, 0.70}

	live := map[int]RoundObservation{}
	cfg.OnRound = func(o RoundObservation) { live[o.Acc.Round] = o }
	path := filepath.Join(t.TempDir(), "run.traj")
	sink, err := trajstore.NewSink(path, cfg, trajstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trajectory = sink
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !rep.Reached {
		t.Fatal("run did not reach its target; the test needs a crossing")
	}

	s, err := trajstore.Replay(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rounds != rep.RoundsRun {
		t.Fatalf("replay rounds %d, live %d", s.Rounds, rep.RoundsRun)
	}
	if s.Reached != rep.Reached || s.TimeToTarget != rep.TimeToTarget || s.CPUToTarget != rep.CPUToTarget {
		t.Fatalf("replay target verdict (%v, %v, %v) != live (%v, %v, %v)",
			s.Reached, s.TimeToTarget, s.CPUToTarget, rep.Reached, rep.TimeToTarget, rep.CPUToTarget)
	}
	if len(s.Crossings) != len(rep.Milestones) {
		t.Fatalf("replay crossings %d, live milestones %d", len(s.Crossings), len(rep.Milestones))
	}
	for i, c := range s.Crossings {
		h := rep.Milestones[i]
		if c.Target != h.Target || c.Round != h.At.Round || c.Acc != h.At.Accuracy ||
			c.Sim != h.At.Time || c.CPU != h.At.CPUTime {
			t.Fatalf("crossing %d: replay %+v != live %+v", i, c, h)
		}
	}

	mid := s.First.Round + (s.Last.Round-s.First.Round)/2
	rec, _, err := trajstore.ReplayAt(path, mid)
	if err != nil {
		t.Fatal(err)
	}
	o, ok := live[mid]
	if !ok {
		t.Fatalf("no live observation for round %d", mid)
	}
	if rec.Acc != o.Acc.Accuracy || rec.Sim != o.Acc.Time || rec.CPU != o.Acc.CPUTime ||
		rec.Updates != o.Result.Updates || rec.Discarded != o.Discarded || rec.Shares != o.Shares {
		t.Fatalf("ReplayAt(%d) = %+v != live observation %+v", mid, rec, o)
	}
	if _, _, err := trajstore.ReplayAt(path, s.Last.Round+1); err == nil {
		t.Fatal("ReplayAt past the last round did not error")
	}
}

// TestFlatRSSLongRun is the bounded-memory assertion behind the
// million-rounds registry entry, held by every shape in its sweep: live
// heap sampled across the run must stay within a constant band of its
// early-run baseline — a bound independent of round count, so the same
// constant holds at the -short round counts and at the nightly full
// counts. SF gets the deepest run (its rounds are cheapest); the
// serverless shapes run fewer rounds but the same contract — before round
// retirement they grew without bound, so any slope reappearing here trips
// the band well inside these budgets. The trajectory sink is attached, so
// the bound covers the store's write path too.
func TestFlatRSSLongRun(t *testing.T) {
	cases := []struct {
		sys           SystemKind
		rounds, short int
	}{
		{SystemSF, 1_000_000, 100_000},
		{SystemLIFL, 200_000, 20_000},
		{SystemSLH, 200_000, 20_000},
		{SystemSL, 200_000, 20_000},
	}
	// Live heap after GC must never exceed the first sample by more than
	// this, no matter how many rounds follow. The runs' steady states are
	// well under 8 MB; the band absorbs GC timing noise, not growth.
	const maxGrowth = 16 << 20

	for _, tc := range cases {
		t.Run(string(tc.sys), func(t *testing.T) {
			rounds := tc.rounds
			if testing.Short() {
				rounds = tc.short
			}
			sc := trajScenario(t, rounds, tc.sys)
			sampleEvery := rounds / 8

			var baseline uint64
			samples := 0
			cfg := sc.Expand()[0].Cfg
			cfg.OnRound = func(o RoundObservation) {
				if o.Acc.Round%sampleEvery != 0 {
					return
				}
				runtime.GC()
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if baseline == 0 {
					baseline = ms.HeapAlloc
					return
				}
				samples++
				if ms.HeapAlloc > baseline+maxGrowth {
					t.Errorf("round %d: live heap %.1f MB exceeds baseline %.1f MB + %d MB",
						o.Acc.Round, float64(ms.HeapAlloc)/(1<<20), float64(baseline)/(1<<20), maxGrowth>>20)
				}
			}
			path := filepath.Join(t.TempDir(), "flat.traj")
			sink, err := trajstore.NewSink(path, cfg, trajstore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cfg.Trajectory = sink
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := sink.Close(); err != nil {
				t.Fatal(err)
			}
			if rep.RoundsRun != rounds || sink.Rounds() != rounds {
				t.Fatalf("rounds: live %d, stored %d, want %d", rep.RoundsRun, sink.Rounds(), rounds)
			}
			if samples < 2 {
				t.Fatalf("only %d heap samples taken", samples)
			}
		})
	}
}
